lib/stm/splitmix.mli:
