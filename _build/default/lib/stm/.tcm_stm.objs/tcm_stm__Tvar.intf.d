lib/stm/tvar.mli: Atomic Txn
