lib/stm/runtime.ml: Atomic Cm_intf Decision Domain Format List Option Status Tvar Txn Unix
