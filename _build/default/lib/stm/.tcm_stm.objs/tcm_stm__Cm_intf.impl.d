lib/stm/cm_intf.ml: Decision Txn
