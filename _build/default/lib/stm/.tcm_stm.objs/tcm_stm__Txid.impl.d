lib/stm/txid.ml: Atomic
