lib/stm/txn.ml: Atomic Format Status Txid Unix
