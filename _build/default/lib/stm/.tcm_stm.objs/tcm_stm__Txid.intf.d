lib/stm/txid.mli:
