lib/stm/txn.mli: Atomic Format Status
