lib/stm/status.mli: Format
