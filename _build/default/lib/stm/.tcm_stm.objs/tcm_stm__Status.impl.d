lib/stm/status.ml: Format
