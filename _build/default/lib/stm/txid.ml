(** Global timestamp and attempt-id sources.

    Timestamps implement the paper's priority scheme: they are generated
    by atomically incrementing a shared counter, so if a transaction
    takes timestamp [t] there is a fixed bound on the number of
    transactions that ever run with an earlier timestamp — the key
    property behind Theorem 1. *)

let timestamp_counter = Atomic.make 1

let attempt_counter = Atomic.make 1

let tvar_counter = Atomic.make 1

(** Fresh timestamp for a new logical transaction.  Smaller timestamps
    mean older transactions, which have higher priority. *)
let next_timestamp () = Atomic.fetch_and_add timestamp_counter 1

(** Fresh id for a transaction attempt (unique across retries). *)
let next_attempt_id () = Atomic.fetch_and_add attempt_counter 1

(** Fresh id for a transactional variable. *)
let next_tvar_id () = Atomic.fetch_and_add tvar_counter 1
