(** The STM execution engine.

    [atomically rt f] runs [f] as a transaction under the runtime's
    contention manager, retrying on abort until the commit CAS
    succeeds.  Conflicts are detected eagerly, at access time, exactly
    as in DSTM/SXM: the acquiring transaction consults its local
    contention manager and either aborts the enemy or stands back.

    Two read modes are supported:

    - [`Visible] (default): readers register on the variable; writers
      resolve each active reader through the contention manager after
      acquiring the locator.  This makes read-write conflicts go
      through the manager (the paper's model) and yields serializable
      executions without commit-time validation.
    - [`Invisible]: DSTM-style invisible reads with re-validation of
      the whole read set on every subsequent open and before the commit
      CAS.  Cheaper under read-mostly loads; provided for the ablation
      benchmarks.  Note the classic caveat: the window between the last
      validation and the commit CAS admits a narrow write-skew race, so
      this mode trades strictness for speed. *)

exception Abort_attempt
(** Internal control flow: the current attempt is (being) aborted and
    must restart. *)

exception Too_many_attempts of int
(** Raised when [max_attempts] is exceeded. *)

exception Retry_wait
(** Internal control flow for [retry_wait]/[check]: abort the attempt
    and re-run after a pause, i.e. block until the world changes. *)

type read_mode = [ `Visible | `Invisible ]

type config = {
  read_mode : read_mode;
  max_attempts : int option;  (** [None] = retry forever. *)
  block_poll_usec : int;
      (** Polling period while blocked on an enemy.  Small values react
          faster; on an oversubscribed machine the sleep also serves as
          a yield. *)
  backoff_cap_usec : int;  (** Upper bound applied to [Backoff] verdicts. *)
}

let default_config =
  { read_mode = `Visible; max_attempts = None; block_poll_usec = 50; backoff_cap_usec = 100_000 }

type stats = {
  commits : int Atomic.t;
  aborts : int Atomic.t;
  conflicts : int Atomic.t;
  enemy_aborts : int Atomic.t;  (** Times we aborted an enemy. *)
  self_aborts : int Atomic.t;
  blocks : int Atomic.t;
  backoffs : int Atomic.t;
}

let make_stats () =
  {
    commits = Atomic.make 0;
    aborts = Atomic.make 0;
    conflicts = Atomic.make 0;
    enemy_aborts = Atomic.make 0;
    self_aborts = Atomic.make 0;
    blocks = Atomic.make 0;
    backoffs = Atomic.make 0;
  }

type stats_snapshot = {
  n_commits : int;
  n_aborts : int;
  n_conflicts : int;
  n_enemy_aborts : int;
  n_self_aborts : int;
  n_blocks : int;
  n_backoffs : int;
}

(* A validated invisible read.  The entry stays valid while the
   variable still carries the locator we resolved the value from and
   the resolution is unchanged — or once the reading transaction itself
   owns the variable with the observed value as the locator's old
   version (read-then-write upgrade). *)
type read_entry = { tvar_id : int; check : unit -> bool }

type t = {
  config : config;
  cm : Cm_intf.factory;
  stats : stats;
  dls : per_domain Domain.DLS.key;
}

and per_domain = { cm_state : Cm_intf.packed; mutable current : tx option }

and tx = {
  rt : t;
  txn : Txn.t;
  dom : per_domain;
  mutable read_log : read_entry list;  (** Invisible mode only. *)
}

let create ?(config = default_config) cm =
  let dls =
    Domain.DLS.new_key (fun () -> { cm_state = Cm_intf.instantiate cm; current = None })
  in
  { config; cm; stats = make_stats (); dls }

let manager_name t = Cm_intf.name t.cm

let stats t =
  {
    n_commits = Atomic.get t.stats.commits;
    n_aborts = Atomic.get t.stats.aborts;
    n_conflicts = Atomic.get t.stats.conflicts;
    n_enemy_aborts = Atomic.get t.stats.enemy_aborts;
    n_self_aborts = Atomic.get t.stats.self_aborts;
    n_blocks = Atomic.get t.stats.blocks;
    n_backoffs = Atomic.get t.stats.backoffs;
  }

let pp_stats fmt s =
  Format.fprintf fmt "commits=%d aborts=%d conflicts=%d enemy-aborts=%d blocks=%d backoffs=%d"
    s.n_commits s.n_aborts s.n_conflicts s.n_enemy_aborts s.n_blocks s.n_backoffs

(* ------------------------------------------------------------------ *)
(* Attempt-local helpers                                               *)
(* ------------------------------------------------------------------ *)

let check_self tx = if not (Txn.is_active tx.txn) then raise Abort_attempt

let sleep_usec usec = if usec > 0 then Unix.sleepf (float_of_int usec *. 1e-6)

(* Block until [other] is no longer active, or starts waiting itself,
   or the timeout expires.  Sets our public waiting flag for the
   duration, so that greedy enemies may abort us (Rule 1). *)
let block_on tx (other : Txn.t) timeout_usec =
  Atomic.incr tx.rt.stats.blocks;
  Atomic.set tx.txn.Txn.waiting true;
  let deadline =
    match timeout_usec with
    | None -> infinity
    | Some us -> Unix.gettimeofday () +. (float_of_int us *. 1e-6)
  in
  let rec wait () =
    if not (Txn.is_active tx.txn) then begin
      Atomic.set tx.txn.Txn.waiting false;
      raise Abort_attempt
    end;
    if Txn.is_active other && not (Txn.is_waiting other) && Unix.gettimeofday () < deadline
    then begin
      sleep_usec tx.rt.config.block_poll_usec;
      wait ()
    end
  in
  wait ();
  Atomic.set tx.txn.Txn.waiting false

(* Execute one contention-manager verdict for a conflict with [other].
   Returns when the caller should re-examine the object. *)
let resolve_conflict tx ~(other : Txn.t) ~attempts =
  check_self tx;
  Atomic.incr tx.rt.stats.conflicts;
  let (Cm_intf.Packed ((module M), st)) = tx.dom.cm_state in
  match M.resolve st ~me:tx.txn ~other ~attempts with
  | Decision.Abort_other ->
      if Txn.try_abort other then Atomic.incr tx.rt.stats.enemy_aborts
  | Decision.Abort_self ->
      Atomic.incr tx.rt.stats.self_aborts;
      ignore (Txn.try_abort tx.txn);
      raise Abort_attempt
  | Decision.Block { timeout_usec } -> block_on tx other timeout_usec
  | Decision.Backoff { usec } ->
      Atomic.incr tx.rt.stats.backoffs;
      sleep_usec (min usec tx.rt.config.backoff_cap_usec);
      check_self tx

let cm_opened tx =
  Txn.record_open tx.txn;
  let (Cm_intf.Packed ((module M), st)) = tx.dom.cm_state in
  M.opened st tx.txn

(* ------------------------------------------------------------------ *)
(* Invisible-read validation                                           *)
(* ------------------------------------------------------------------ *)

let make_read_entry (type v) (tx : tx) (tvar : v Tvar.t) (loc : v Tvar.locator)
    ~saw_committed (seen : v) : read_entry =
  let check () =
    let cur = Atomic.get tvar.Tvar.loc in
    if cur == loc then
      (* Committed owners stay committed; for active/aborted owners the
         value we used becomes wrong only if the owner commits. *)
      saw_committed || Txn.status loc.Tvar.owner <> Status.Committed
    else
      (* Upgrade: we acquired the variable ourselves after reading it;
         the read stays consistent iff the stable value we captured at
         acquisition is the one we had read. *)
      cur.Tvar.owner == tx.txn && cur.Tvar.old_v == seen
  in
  { tvar_id = tvar.Tvar.id; check }

let validate tx =
  if not (List.for_all (fun e -> e.check ()) tx.read_log) then begin
    ignore (Txn.try_abort tx.txn);
    raise Abort_attempt
  end

(* ------------------------------------------------------------------ *)
(* Open for write                                                      *)
(* ------------------------------------------------------------------ *)

(* After acquiring the locator, resolve every active visible reader.
   Readers registering after our CAS observe us as active owner and
   resolve from their side, so scanning once per remaining active
   reader suffices for mutual awareness. *)
let rec drain_readers tx tvar attempts =
  check_self tx;
  match Tvar.find_active_reader tvar tx.txn with
  | None -> Tvar.purge_readers tvar
  | Some r ->
      resolve_conflict tx ~other:r ~attempts;
      drain_readers tx tvar (attempts + 1)

let rec acquire : 'a. tx -> 'a Tvar.t -> int -> 'a Tvar.locator =
  fun tx tvar attempts ->
   check_self tx;
   let loc = Atomic.get tvar.Tvar.loc in
   if loc.Tvar.owner == tx.txn then loc
   else
     match Txn.status loc.Tvar.owner with
     | Status.Active ->
         resolve_conflict tx ~other:loc.Tvar.owner ~attempts;
         acquire tx tvar (attempts + 1)
     | Status.Committed | Status.Aborted ->
         let cur = Tvar.value_of_locator loc in
         let nloc = { Tvar.owner = tx.txn; old_v = cur; new_v = ref cur } in
         if Atomic.compare_and_set tvar.Tvar.loc loc nloc then begin
           if tx.rt.config.read_mode = `Visible then drain_readers tx tvar 0
           else validate tx;
           cm_opened tx;
           nloc
         end
         else acquire tx tvar attempts

(* ------------------------------------------------------------------ *)
(* Public transactional operations                                     *)
(* ------------------------------------------------------------------ *)

let write tx tvar v =
  let loc = acquire tx tvar 0 in
  loc.Tvar.new_v := v

let rec read_visible : 'a. tx -> 'a Tvar.t -> int -> 'a =
  fun tx tvar attempts ->
   check_self tx;
   let loc = Atomic.get tvar.Tvar.loc in
   if loc.Tvar.owner == tx.txn then !(loc.Tvar.new_v)
   else begin
     Tvar.register_reader tvar tx.txn;
     (* Re-read after registration: any writer that acquired before our
        registration either drained us (sees us in the list) or is
        observed right here. *)
     let loc = Atomic.get tvar.Tvar.loc in
     if loc.Tvar.owner == tx.txn then !(loc.Tvar.new_v)
     else
       match Txn.status loc.Tvar.owner with
       | Status.Active ->
           resolve_conflict tx ~other:loc.Tvar.owner ~attempts;
           read_visible tx tvar (attempts + 1)
       | Status.Committed ->
           cm_opened tx;
           !(loc.Tvar.new_v)
       | Status.Aborted ->
           cm_opened tx;
           loc.Tvar.old_v
   end

let read_invisible tx tvar =
  check_self tx;
  let loc = Atomic.get tvar.Tvar.loc in
  if loc.Tvar.owner == tx.txn then !(loc.Tvar.new_v)
  else begin
    let saw_committed = Txn.status loc.Tvar.owner = Status.Committed in
    let v = if saw_committed then !(loc.Tvar.new_v) else loc.Tvar.old_v in
    tx.read_log <- make_read_entry tx tvar loc ~saw_committed v :: tx.read_log;
    validate tx;
    cm_opened tx;
    v
  end

let read tx tvar =
  match tx.rt.config.read_mode with
  | `Visible -> read_visible tx tvar 0
  | `Invisible -> read_invisible tx tvar

(** Read through the write path: acquires the variable exclusively.
    Use for read-modify-write accesses to avoid upgrade conflicts. *)
let read_for_write tx tvar =
  let loc = acquire tx tvar 0 in
  !(loc.Tvar.new_v)

let modify tx tvar f =
  let loc = acquire tx tvar 0 in
  loc.Tvar.new_v := f !(loc.Tvar.new_v)

(** User-requested abort-and-retry of the current attempt. *)
let retry_now tx : 'a =
  ignore (Txn.try_abort tx.txn);
  raise Abort_attempt

(** Blocking retry (Harris-et-al style [retry]): abort and re-run the
    transaction after a pause, so the caller effectively waits for the
    state it read to change.  The pause grows geometrically up to the
    configured cap. *)
let retry_wait tx : 'a =
  ignore (Txn.try_abort tx.txn);
  raise Retry_wait

(** [check tx cond]: proceed if [cond] holds, otherwise block (via
    {!retry_wait}) until a later re-execution sees it hold. *)
let check tx cond = if not cond then retry_wait tx

(* ------------------------------------------------------------------ *)
(* The atomic block                                                    *)
(* ------------------------------------------------------------------ *)

let commit tx =
  if tx.rt.config.read_mode = `Invisible then validate tx;
  Txn.try_commit tx.txn

let atomically rt f =
  let dom = Domain.DLS.get rt.dls in
  match dom.current with
  | Some tx when Txn.is_active tx.txn ->
      (* Nested atomically: flatten into the enclosing transaction. *)
      f tx
  | _ ->
      let (Cm_intf.Packed ((module M), cm_st)) = dom.cm_state in
      let shared = Txn.new_shared () in
      let rec attempt ?(wait_round = 0) n =
        (match rt.config.max_attempts with
        | Some m when n > m -> raise (Too_many_attempts n)
        | _ -> ());
        let txn = Txn.new_attempt shared in
        let tx = { rt; txn; dom; read_log = [] } in
        dom.current <- Some tx;
        M.begin_attempt cm_st txn;
        let finish_abort () =
          ignore (Txn.try_abort txn);
          Atomic.set txn.Txn.waiting false;
          Atomic.incr rt.stats.aborts;
          M.aborted cm_st txn;
          dom.current <- None
        in
        match f tx with
        | v ->
            if commit tx then begin
              Atomic.incr rt.stats.commits;
              M.committed cm_st txn;
              dom.current <- None;
              v
            end
            else begin
              finish_abort ();
              attempt (n + 1)
            end
        | exception Abort_attempt ->
            finish_abort ();
            attempt (n + 1)
        | exception Retry_wait ->
            finish_abort ();
            (* Geometrically growing pause: the caller is waiting for
               another transaction to change the state it checked. *)
            let usec =
              min rt.config.backoff_cap_usec
                (rt.config.block_poll_usec * (1 lsl min wait_round 12))
            in
            sleep_usec usec;
            attempt ~wait_round:(wait_round + 1) (n + 1)
        | exception e ->
            (* User exception: abort the transaction, propagate. *)
            finish_abort ();
            raise e
      in
      attempt 1

(** Number of attempts the currently running transaction has made so
    far on this domain (1 for the first attempt); for diagnostics. *)
let current_txn rt =
  let dom = Domain.DLS.get rt.dls in
  Option.map (fun tx -> tx.txn) dom.current
