(** Transaction lifecycle status.

    A transaction attempt is [Active] from its creation until a single
    successful compare-and-set moves it to [Committed] (performed by the
    owner) or [Aborted] (performed by the owner or by an enemy
    transaction that won a conflict).  The transition is one-shot: a
    committed or aborted attempt never changes status again. *)

type t =
  | Active
  | Committed
  | Aborted

let to_string = function
  | Active -> "active"
  | Committed -> "committed"
  | Aborted -> "aborted"

let pp fmt s = Format.pp_print_string fmt (to_string s)

let equal (a : t) (b : t) = a = b
