(** Public facade of the STM substrate.

    Typical use:

    {[
      let cm = Tcm_core.Registry.find_exn "greedy" in
      let rt = Stm.create cm in
      let acct = Stm.Tvar.make 100 in
      Stm.atomically rt (fun tx ->
          let v = Stm.read tx acct in
          Stm.write tx acct (v + 1))
    ]} *)

module Status = Status
module Splitmix = Splitmix
module Txid = Txid
module Txn = Txn
module Decision = Decision
module Cm_intf = Cm_intf
module Tvar = Tvar
module Runtime = Runtime

type runtime = Runtime.t
type tx = Runtime.tx
type config = Runtime.config = {
  read_mode : Runtime.read_mode;
  max_attempts : int option;
  block_poll_usec : int;
  backoff_cap_usec : int;
}

let default_config = Runtime.default_config
let create = Runtime.create
let atomically = Runtime.atomically
let read = Runtime.read
let write = Runtime.write
let read_for_write = Runtime.read_for_write
let modify = Runtime.modify
let retry_now = Runtime.retry_now
let retry_wait = Runtime.retry_wait
let check = Runtime.check
let stats = Runtime.stats
let manager_name = Runtime.manager_name
