(** Contention-manager decisions.

    When transaction [A] is about to perform an access that conflicts
    with transaction [B], [A]'s contention manager returns one of these
    verdicts.  The runtime executes the verdict and, unless it was
    terminal for [A], calls the manager again with an incremented
    [attempts] counter until the conflict is gone. *)

type t =
  | Abort_other  (** Abort the enemy attempt (CAS its status). *)
  | Abort_self   (** Abort and restart the calling transaction. *)
  | Block of { timeout_usec : int option }
      (** Greedy-style wait: set our public [waiting] flag and block
          until the enemy commits, aborts or starts waiting itself —
          or until the optional timeout expires.  Either way the
          manager is consulted again afterwards. *)
  | Backoff of { usec : int }
      (** Sleep for the given duration, then consult the manager
          again.  Used by Polite/Polka-style managers. *)

let pp fmt = function
  | Abort_other -> Format.pp_print_string fmt "abort-other"
  | Abort_self -> Format.pp_print_string fmt "abort-self"
  | Block { timeout_usec = None } -> Format.pp_print_string fmt "block"
  | Block { timeout_usec = Some t } -> Format.fprintf fmt "block(%dus)" t
  | Backoff { usec } -> Format.fprintf fmt "backoff(%dus)" usec
