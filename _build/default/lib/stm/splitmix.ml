(** Deterministic splitmix64 pseudo-random stream.

    Used everywhere randomness is needed — contention-manager jitter,
    simulator policies, workload generators — so that every experiment
    is reproducible from its seed and nothing touches the global
    [Random] state shared across domains. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int ((seed * 0x9E3779B9) + 1) }

let global_seed = Atomic.make 0x51ED270B

(** Fresh stream with a process-unique seed (for per-instance jitter
    where cross-run determinism is not required). *)
let create_self_seeded () = create (Atomic.fetch_and_add global_seed 0x61c88647)

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform int in [0, bound); [bound <= 1] yields 0. *)
let int t bound =
  if bound <= 1 then 0
  else Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

let bool t = Int64.logand (next t) 1L = 1L

(** Uniform float in [0, 1). *)
let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0
