(** Transactional variables (the STM's shared objects).

    A [Tvar] follows the DSTM/SXM locator protocol.  The variable
    points atomically at a {e locator}: the owning transaction attempt,
    the last committed value [old_v] and the tentative value [new_v].
    The logical value of the variable is

    - [!new_v]  if the owner committed,
    - [old_v]   if the owner is active or aborted.

    A writer acquires the variable by installing (with CAS) a fresh
    locator that carries itself as owner; [new_v] is a ref mutated
    exclusively by the owner while it is active, and becomes the
    committed value if the owner's commit CAS succeeds.  Publication of
    [new_v] happens through the owner's atomic status transition, which
    makes the plain ref safe under the OCaml memory model
    (message-passing pattern).

    Readers are {e visible}: they register in the [readers] list so
    that writers resolve read-write conflicts through the contention
    manager, matching the paper's conflict definition ("two
    transactions conflict if they access the same object and one access
    is a write").  Dead entries are purged lazily. *)

type 'a locator = { owner : Txn.t; old_v : 'a; new_v : 'a ref }

type 'a t = {
  id : int;
  loc : 'a locator Atomic.t;
  readers : Txn.t list Atomic.t;
}

let make v =
  {
    id = Txid.next_tvar_id ();
    loc = Atomic.make { owner = Txn.committed_sentinel; old_v = v; new_v = ref v };
    readers = Atomic.make [];
  }

let id t = t.id

(** Value of a locator as seen by an outside observer, given the
    owner's status read {e after} the locator itself. *)
let value_of_locator (loc : 'a locator) : 'a =
  match Txn.status loc.owner with
  | Status.Committed -> !(loc.new_v)
  | Status.Active | Status.Aborted -> loc.old_v

(** Latest committed value, for non-transactional inspection (tests,
    debugging).  Linearizes at the atomic load of the locator. *)
let peek t =
  let loc = Atomic.get t.loc in
  value_of_locator loc

(** Register [txn] as a visible reader.  Idempotent; purges dead
    entries while it is at it. *)
let register_reader t (txn : Txn.t) =
  let rec go () =
    let rs = Atomic.get t.readers in
    if List.memq txn rs then ()
    else
      let live = List.filter Txn.is_active rs in
      let nrs = txn :: live in
      if not (Atomic.compare_and_set t.readers rs nrs) then go ()
  in
  go ()

(** First active reader other than [txn], if any. *)
let find_active_reader t (txn : Txn.t) =
  let rs = Atomic.get t.readers in
  List.find_opt (fun r -> r != txn && Txn.is_active r) rs

(** Opportunistically drop dead reader entries. *)
let purge_readers t =
  let rs = Atomic.get t.readers in
  let live = List.filter Txn.is_active rs in
  if List.length live < List.length rs then
    ignore (Atomic.compare_and_set t.readers rs live)
