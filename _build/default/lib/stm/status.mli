(** Transaction lifecycle status.

    An attempt is [Active] from creation until one successful
    compare-and-set moves it to [Committed] (by its owner) or [Aborted]
    (by its owner or by an enemy that won a conflict).  The transition
    is one-shot. *)

type t =
  | Active
  | Committed
  | Aborted

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
