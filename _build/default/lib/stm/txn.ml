(** Transaction descriptors.

    A {e logical transaction} corresponds to one call to
    [Runtime.atomically].  It may run as several {e attempts}: when an
    attempt aborts, the runtime starts a new attempt of the same logical
    transaction.  Fields that the paper requires to survive aborts — the
    timestamp above all (Section 3: "when a transaction begins, it is
    given a timestamp which it retains even if it aborts and restarts")
    — live in the [shared] record, which all attempts of one logical
    transaction point to.  Per-attempt fields ([status], [waiting]) are
    fresh for every attempt, because enemies abort a specific attempt by
    CAS-ing its status word.

    All fields read by other threads are [Atomic.t]; the contention
    managers compare two descriptors using only these public fields,
    reflecting the decentralised setting described in Section 2. *)

type shared = {
  timestamp : int;
      (** Priority: smaller is older is higher-priority.  Retained
          across aborts, refreshed only for a new logical transaction. *)
  priority : int Atomic.t;
      (** Accumulated priority used by Karma / Eruption / Polka:
          incremented on each successful object open, retained across
          aborts, reset on commit (by virtue of the logical transaction
          ending). Other managers ignore it. *)
  aborts : int Atomic.t;
      (** Number of times this logical transaction was aborted. *)
  opens : int Atomic.t;
      (** Number of successful object opens over all attempts. *)
  born : float;  (** Wall-clock time of the logical transaction start. *)
}

type t = {
  attempt_id : int;  (** Unique across all attempts of all transactions. *)
  status : Status.t Atomic.t;
  waiting : bool Atomic.t;
      (** Public flag: true while this attempt is blocked waiting for an
          enemy.  Greedy Rule 1 aborts enemies whose flag is set. *)
  shared : shared;
}

let new_shared () =
  {
    timestamp = Txid.next_timestamp ();
    priority = Atomic.make 0;
    aborts = Atomic.make 0;
    opens = Atomic.make 0;
    born = Unix.gettimeofday ();
  }

let new_attempt shared =
  {
    attempt_id = Txid.next_attempt_id ();
    status = Atomic.make Status.Active;
    waiting = Atomic.make false;
    shared;
  }

(** Sentinel owner used for the initial locator of every tvar: a
    permanently committed transaction. *)
let committed_sentinel =
  let shared =
    {
      timestamp = 0;
      priority = Atomic.make 0;
      aborts = Atomic.make 0;
      opens = Atomic.make 0;
      born = 0.;
    }
  in
  {
    attempt_id = 0;
    status = Atomic.make Status.Committed;
    waiting = Atomic.make false;
    shared;
  }

let status t = Atomic.get t.status
let is_active t = status t = Status.Active
let is_committed t = status t = Status.Committed
let is_aborted t = status t = Status.Aborted
let is_waiting t = Atomic.get t.waiting

let timestamp t = t.shared.timestamp
let priority t = Atomic.get t.shared.priority
let abort_count t = Atomic.get t.shared.aborts
let open_count t = Atomic.get t.shared.opens

(** [older_than a b] is true when [a] has higher (older) priority. *)
let older_than a b = timestamp a < timestamp b

(** Enemy-side abort.  Returns [true] if the attempt is aborted after
    the call (whether we did it or it already was). *)
let try_abort t =
  if Atomic.compare_and_set t.status Status.Active Status.Aborted then begin
    Atomic.incr t.shared.aborts;
    true
  end
  else is_aborted t

(** Owner-side commit.  Fails iff an enemy aborted us first. *)
let try_commit t = Atomic.compare_and_set t.status Status.Active Status.Committed

let add_priority t n = ignore (Atomic.fetch_and_add t.shared.priority n)

let record_open t =
  Atomic.incr t.shared.opens;
  Atomic.incr t.shared.priority

let pp fmt t =
  Format.fprintf fmt "tx#%d[ts=%d;%a%s]" t.attempt_id (timestamp t) Status.pp
    (status t)
    (if is_waiting t then ";waiting" else "")
