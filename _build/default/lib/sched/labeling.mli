(** Valid labelings and graph scores (Section 4.3).

    A valid labeling has [L(u) + L(v) >= 1] on every edge; the score
    [S(G)] is the minimum label sum — a minimum fractional vertex
    cover, half-integral, computed exactly via matching. *)

val score_x2 : Graph.t -> int
(** [2 * S(G)], exact. *)

val score : Graph.t -> float

val valid : Graph.t -> float array -> bool
val sum : float array -> float

val lemma7_check : m:int -> Graph.t list -> int * bool
(** For a partition of [G(m,s)] into spanning subgraphs: the doubled
    maximum score and whether Lemma 7's [max_i S(H_i) >= m] holds. *)

val corollary8_check : m:int -> Graph.t list -> int * bool
(** Same for Corollary 8's [>= 2m] over G(2m, s(s+1)/2). *)
