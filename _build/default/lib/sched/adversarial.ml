(** The Section 4 adversarial chain instance.

    Transactions [T0 .. Ts] and objects [X1 .. Xs]; every transaction
    runs for one time unit.  [T0] accesses [X1], [Ts] accesses [Xs],
    and each remaining [Ti] accesses [Xi] and [Xi+1].  [Ti] has higher
    priority (an earlier timestamp) than [Ti-1].

    As a task system (resources held for the whole duration) a list
    scheduler can run the even tasks then the odd tasks for a makespan
    of 2 — which is optimal.  The greedy contention manager, which
    discovers accesses only when they happen, is tricked into a cascade
    of aborts and needs makespan [s + 1] (reproduced in the simulator,
    see [Tcm_sim.Scenarios.adversarial_chain]). *)

(** Objects used by transaction [i] of the chain with parameter [s]
    (1-based object names, as in the paper). *)
let objects_of ~s i =
  if i = 0 then [ 1 ]
  else if i = s then [ s ]
  else [ i; i + 1 ]

(** The corresponding Garey–Graham task system.  Object [Xi] becomes
    resource [i - 1]; all accesses are updates (amount 1). *)
let task_system ~s : Task_system.t =
  if s < 1 then invalid_arg "Adversarial.task_system: s >= 1 required";
  let tasks =
    List.init (s + 1) (fun i ->
        Task_system.task ~id:i ~dur:1
          (List.map (fun x -> (x - 1, Task_system.update_amount)) (objects_of ~s i)))
  in
  Task_system.make tasks

(** Even-then-odd order achieving makespan 2 (optimal for s >= 2). *)
let even_odd_order ~s =
  let evens = List.filter (fun i -> i mod 2 = 0) (List.init (s + 1) Fun.id) in
  let odds = List.filter (fun i -> i mod 2 = 1) (List.init (s + 1) Fun.id) in
  Array.of_list (evens @ odds)

let optimal_makespan ~s =
  if s = 1 then 2 (* T0 and T1 share X1: they must serialize. *)
  else
    let ts = task_system ~s in
    (List_scheduler.run ts (even_odd_order ~s)).List_scheduler.makespan

(** Makespan the greedy manager achieves on the chain (paper: s + 1). *)
let greedy_makespan ~s = s + 1
