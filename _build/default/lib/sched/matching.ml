(** Maximum bipartite matching (Hopcroft–Karp).

    Used to compute graph scores: the score [S(G)] of Section 4.3 is a
    minimum fractional vertex cover, which by LP duality equals the
    maximum fractional matching, which in turn is half the maximum
    (integral) matching of the bipartite double cover of [G]. *)

type bipartite = {
  n_left : int;
  n_right : int;
  adj : int list array;  (** adj.(u) = right-neighbours of left vertex u. *)
}

let make ~n_left ~n_right edges =
  let adj = Array.make n_left [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n_left || v < 0 || v >= n_right then
        invalid_arg "Matching.make: edge out of range";
      adj.(u) <- v :: adj.(u))
    edges;
  { n_left; n_right; adj }

let inf = max_int

(** Size of a maximum matching. *)
let max_matching (g : bipartite) : int =
  let match_l = Array.make g.n_left (-1) in
  let match_r = Array.make g.n_right (-1) in
  let dist = Array.make g.n_left inf in
  let q = Queue.create () in
  let bfs () =
    Queue.clear q;
    let found = ref false in
    for u = 0 to g.n_left - 1 do
      if match_l.(u) = -1 then begin
        dist.(u) <- 0;
        Queue.add u q
      end
      else dist.(u) <- inf
    done;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          match match_r.(v) with
          | -1 -> found := true
          | w ->
              if dist.(w) = inf then begin
                dist.(w) <- dist.(u) + 1;
                Queue.add w q
              end)
        g.adj.(u)
    done;
    !found
  in
  let rec dfs u =
    List.exists
      (fun v ->
        match match_r.(v) with
        | -1 ->
            match_l.(u) <- v;
            match_r.(v) <- u;
            true
        | w ->
            if dist.(w) = dist.(u) + 1 && dfs w then begin
              match_l.(u) <- v;
              match_r.(v) <- u;
              true
            end
            else false)
      g.adj.(u)
    ||
    (dist.(u) <- inf;
     false)
  in
  let size = ref 0 in
  while bfs () do
    for u = 0 to g.n_left - 1 do
      if match_l.(u) = -1 && dfs u then incr size
    done
  done;
  !size

(** Bipartite double cover of an undirected graph: each vertex [u]
    splits into a left and a right copy; each edge {u, v} yields
    (uL, vR) and (vL, uR). *)
let double_cover (g : Graph.t) : bipartite =
  let n = Graph.n_vertices g in
  let edges =
    List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) (Graph.edges g)
  in
  make ~n_left:n ~n_right:n edges
