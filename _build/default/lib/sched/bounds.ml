(** The bounds proved or cited in the paper. *)

(** Garey–Graham: any list schedule is within a factor [(s + 1)] of the
    optimal schedule, where [s] is the number of resources. *)
let list_schedule_factor ~s = s + 1

(** Theorem 9: any contention manager satisfying the pending-commit
    property produces a makespan within a factor [s(s+1) + 2] of the
    optimal off-line list schedule. *)
let pending_commit_factor ~s = (s * (s + 1)) + 2

(** Does a measured makespan respect Theorem 9 against a given optimal
    makespan? *)
let within_theorem9 ~s ~measured ~optimal =
  measured <= pending_commit_factor ~s * optimal
