(** Simple undirected graphs on vertex set [0 .. n-1], used by the
    Lemma 7 / Corollary 8 machinery (Section 4.3). *)

type t = {
  n : int;
  adj : int list array;  (** Sorted neighbour lists, no duplicates. *)
}

let empty n =
  if n < 0 then invalid_arg "Graph.empty";
  { n; adj = Array.make n [] }

let n_vertices g = g.n

let has_edge g u v = List.mem v g.adj.(u)

let add_edge g u v =
  if u < 0 || v < 0 || u >= g.n || v >= g.n then invalid_arg "Graph.add_edge: out of range";
  if u <> v && not (has_edge g u v) then begin
    g.adj.(u) <- List.sort compare (v :: g.adj.(u));
    g.adj.(v) <- List.sort compare (u :: g.adj.(v))
  end

let of_edges n edges =
  let g = empty n in
  List.iter (fun (u, v) -> add_edge g u v) edges;
  g

let edges g =
  let acc = ref [] in
  for u = 0 to g.n - 1 do
    List.iter (fun v -> if u < v then acc := (u, v) :: !acc) g.adj.(u)
  done;
  List.rev !acc

let n_edges g = List.length (edges g)

let neighbours g u = g.adj.(u)

(** The paper's graph [G(m, s)]: vertex set [{0 .. (s+1)m - 1}] with an
    edge between [a] and [b] whenever [|a - b| >= m]. *)
let g_m_s ~m ~s =
  if m < 1 || s < 1 then invalid_arg "Graph.g_m_s";
  let n = (s + 1) * m in
  let g = empty n in
  for a = 0 to n - 1 do
    for b = a + m to n - 1 do
      add_edge g a b
    done
  done;
  g

(** Partition the edges of [g] into [k] spanning subgraphs (same vertex
    set, edge sets partitioned) according to [assign e -> 0..k-1]. *)
let partition_edges g k assign =
  let parts = Array.init k (fun _ -> empty g.n) in
  List.iteri
    (fun i (u, v) ->
      let p = assign i (u, v) in
      if p < 0 || p >= k then invalid_arg "Graph.partition_edges: bad part";
      add_edge parts.(p) u v)
    (edges g);
  Array.to_list parts
