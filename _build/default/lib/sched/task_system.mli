(** Task systems in the model of Garey and Graham (Section 4.1): tasks
    with integer-tick lengths holding fractional resource amounts for
    their whole duration; non-preemptable. *)

type task = {
  id : int;
  dur : int;  (** Ticks; > 0. *)
  needs : (int * float) list;  (** [(resource, amount)], amounts in (0, 1]. *)
}

type t = { tasks : task array; n_resources : int }

val eps : float
(** Comparison slack for fractional amounts. *)

val task : id:int -> dur:int -> (int * float) list -> task
(** @raise Invalid_argument on non-positive durations, negative
    resource indices or amounts outside (0, 1]. *)

val make : task list -> t
val n_tasks : t -> int
val n_resources : t -> int
val total_work : t -> int

val usage : task -> int -> float
(** Amount of a resource used by a task (0. if undeclared). *)

val conflicts : task -> task -> bool
(** Do the two tasks overflow some resource if run together? *)

val update_amount : float
(** A transactional update uses the whole object (1.0). *)

val read_amount : n:int -> float
(** A read uses [1/n] of the object (Section 4.2). *)
