(** Valid labelings and graph scores (Section 4.3).

    A valid labeling of [G] is [L : V -> [0, inf)] with
    [L(u) + L(v) >= 1] for every edge; the score [S(G)] is the infimum
    of [sum_v L(v)] — i.e. the minimum {e fractional vertex cover}.
    Fractional vertex covers are half-integral, and by König/LP duality
    [S(G) = (max matching of the bipartite double cover) / 2], which is
    what we compute.  Scores are therefore returned doubled, as exact
    integers. *)

(** [2 * S(G)], exact. *)
let score_x2 (g : Graph.t) : int = Matching.max_matching (Matching.double_cover g)

let score (g : Graph.t) : float = float_of_int (score_x2 g) /. 2.

(** Is [l] a valid labeling of [g]? *)
let valid g l =
  Array.length l = Graph.n_vertices g
  && Array.for_all (fun x -> x >= 0.) l
  && List.for_all (fun (u, v) -> l.(u) +. l.(v) >= 1. -. 1e-9) (Graph.edges g)

let sum l = Array.fold_left ( +. ) 0. l

(** Lemma 7 (Garey & Graham): if [G(m, s)] is partitioned into [s]
    spanning subgraphs [H1..Hs] then [max_i S(Hi) >= m].  This checks
    the claim for one concrete partition (returns the doubled maximum
    score and whether the bound holds). *)
let lemma7_check ~m parts =
  let max_x2 = List.fold_left (fun acc h -> max acc (score_x2 h)) 0 parts in
  (max_x2, max_x2 >= 2 * m)

(** Corollary 8: partitioning [G(2m, s(s+1)/2)] into [s(s+1)/2]
    spanning subgraphs forces [max_i S(Hi) >= 2m]. *)
let corollary8_check ~m parts =
  let max_x2 = List.fold_left (fun acc h -> max acc (score_x2 h)) 0 parts in
  (max_x2, max_x2 >= 4 * m)
