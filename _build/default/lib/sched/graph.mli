(** Simple undirected graphs on [0 .. n-1] for the Lemma 7 machinery. *)

type t

val empty : int -> t
val n_vertices : t -> int
val has_edge : t -> int -> int -> bool

val add_edge : t -> int -> int -> unit
(** Idempotent; ignores self-loops.
    @raise Invalid_argument out of range. *)

val of_edges : int -> (int * int) list -> t
val edges : t -> (int * int) list
val n_edges : t -> int
val neighbours : t -> int -> int list

val g_m_s : m:int -> s:int -> t
(** The paper's [G(m, s)]: vertices [{0 .. (s+1)m - 1}], an edge
    between [a] and [b] whenever [|a - b| >= m]. *)

val partition_edges : t -> int -> (int -> int * int -> int) -> t list
(** Partition the edges into [k] spanning subgraphs according to the
    assignment function (edge index, endpoints) -> part. *)
