(** Optimal off-line list schedules.

    Computing an optimal schedule is NP-complete (Garey–Graham), so we
    search the permutation space exhaustively with branch-and-bound for
    small instances — exactly the comparator the paper's Theorem 9 uses
    ("an optimal off-line list scheduler, one that knows transactions'
    resource requirements in advance") — and fall back to the best of a
    deterministic sample of orders for larger ones. *)

(** Work-based lower bound: no schedule beats the heaviest resource's
    aggregate demand, nor the longest task. *)
let lower_bound (ts : Task_system.t) : int =
  let loads = Array.make (Task_system.n_resources ts) 0. in
  let longest = ref 0 in
  Array.iter
    (fun task ->
      longest := max !longest task.Task_system.dur;
      List.iter
        (fun (r, a) -> loads.(r) <- loads.(r) +. (a *. float_of_int task.Task_system.dur))
        task.Task_system.needs)
    ts.tasks;
  let heaviest =
    Array.fold_left (fun acc l -> max acc (int_of_float (ceil (l -. Task_system.eps)))) 0 loads
  in
  max !longest heaviest

(* Enumerate permutations of [0..n-1], invoking [f] on each; [f]
   returning [true] stops the enumeration early. *)
let iter_permutations n f =
  let arr = Array.init n Fun.id in
  let stop = ref false in
  let rec go k =
    if not !stop then
      if k = n then (if f arr then stop := true)
      else
        for i = k to n - 1 do
          if not !stop then begin
            let tmp = arr.(k) in
            arr.(k) <- arr.(i);
            arr.(i) <- tmp;
            go (k + 1);
            let tmp = arr.(k) in
            arr.(k) <- arr.(i);
            arr.(i) <- tmp
          end
        done
  in
  go 0

(** Makespan of the best list order, exhaustive for [n <= exact_limit]
    (default 8).  Also returns the best order found. *)
let best_list_schedule ?(exact_limit = 8) (ts : Task_system.t) : int array * int =
  let n = Task_system.n_tasks ts in
  if n = 0 then ([||], 0)
  else begin
    let lb = lower_bound ts in
    let best_order = ref (List_scheduler.identity_order ts) in
    let best = ref (List_scheduler.run ts !best_order).List_scheduler.makespan in
    let try_order order =
      let m = (List_scheduler.run ts order).List_scheduler.makespan in
      if m < !best then begin
        best := m;
        best_order := Array.copy order
      end;
      !best <= lb
    in
    if n <= exact_limit then iter_permutations n try_order
    else begin
      (* Deterministic heuristics: longest-first, shortest-first,
         most-demanding-first, plus rotations of the identity. *)
      let by cmp =
        let order = Array.init n Fun.id in
        Array.sort (fun i j -> cmp ts.tasks.(i) ts.tasks.(j)) order;
        order
      in
      let dur t = t.Task_system.dur in
      let demand t = List.fold_left (fun acc (_, a) -> acc +. a) 0. t.Task_system.needs in
      let candidates =
        [
          by (fun a b -> compare (dur b) (dur a));
          by (fun a b -> compare (dur a) (dur b));
          by (fun a b -> compare (demand b) (demand a));
        ]
        @ List.init (min n 16) (fun k -> Array.init n (fun i -> (i + k) mod n))
      in
      List.iter (fun o -> ignore (try_order o)) candidates
    end;
    (!best_order, !best)
  end

let optimal_makespan ?exact_limit ts = snd (best_list_schedule ?exact_limit ts)
