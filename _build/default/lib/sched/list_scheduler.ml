(** List scheduling (Garey–Graham).

    A list scheduler keeps a fixed priority list of tasks; at every
    tick it scans the list front to back and starts every unstarted
    task whose resource requirements are currently satisfiable (we have
    as many processors as tasks, as in the paper).  List schedules obey
    the {e list-scheduler property}: no task waits while the resources
    it needs are available. *)

type schedule = {
  start : int array;  (** start.(i) = tick at which task i starts. *)
  makespan : int;
}

let eps = Task_system.eps

(** Simulate the list schedule for [order] (a permutation of task
    indices, highest priority first). *)
let run (ts : Task_system.t) (order : int array) : schedule =
  let n = Task_system.n_tasks ts in
  if Array.length order <> n then invalid_arg "List_scheduler.run: bad order length";
  let start = Array.make n (-1) in
  let finish = Array.make n max_int in
  let in_use = Array.make (Task_system.n_resources ts) 0. in
  let started = ref 0 in
  let t = ref 0 in
  let makespan = ref 0 in
  while !started < n do
    (* Release resources of tasks finishing at time !t. *)
    Array.iteri
      (fun i f ->
        if f = !t then
          List.iter
            (fun (r, a) -> in_use.(r) <- in_use.(r) -. a)
            ts.tasks.(i).Task_system.needs)
      finish;
    (* Scan the list, starting every task that now fits. *)
    Array.iter
      (fun i ->
        if start.(i) < 0 then begin
          let fits =
            List.for_all
              (fun (r, a) -> in_use.(r) +. a <= 1. +. eps)
              ts.tasks.(i).Task_system.needs
          in
          if fits then begin
            start.(i) <- !t;
            finish.(i) <- !t + ts.tasks.(i).Task_system.dur;
            makespan := max !makespan finish.(i);
            incr started;
            List.iter
              (fun (r, a) -> in_use.(r) <- in_use.(r) +. a)
              ts.tasks.(i).Task_system.needs
          end
        end)
      order;
    incr t
  done;
  { start; makespan = !makespan }

let identity_order ts = Array.init (Task_system.n_tasks ts) Fun.id

(** Check the list-scheduler property on a schedule: at no tick is an
    unstarted task's demand satisfiable by the idle resources.  Used in
    tests to validate [run] and in the Theorem 9 machinery. *)
let satisfies_list_property (ts : Task_system.t) (s : schedule) : bool =
  let n = Task_system.n_tasks ts in
  let ok = ref true in
  for t = 0 to s.makespan - 1 do
    let in_use = Array.make (Task_system.n_resources ts) 0. in
    for i = 0 to n - 1 do
      if s.start.(i) <= t && t < s.start.(i) + ts.tasks.(i).Task_system.dur then
        List.iter
          (fun (r, a) -> in_use.(r) <- in_use.(r) +. a)
          ts.tasks.(i).Task_system.needs
    done;
    for i = 0 to n - 1 do
      if s.start.(i) > t then begin
        let fits =
          List.for_all
            (fun (r, a) -> in_use.(r) +. a <= 1. +. eps)
            ts.tasks.(i).Task_system.needs
        in
        if fits then ok := false
      end
    done
  done;
  !ok
