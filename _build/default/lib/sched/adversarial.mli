(** The Section 4 adversarial chain: transactions [T0..Ts] over objects
    [X1..Xs], unit durations, priorities inverted so that [T_i] is
    older than [T_{i-1}].  A list scheduler can run evens then odds for
    makespan 2; greedy is tricked into a cascade of aborts and needs
    [s + 1]. *)

val objects_of : s:int -> int -> int list
(** 1-based objects accessed by transaction [i]. *)

val task_system : s:int -> Task_system.t
(** @raise Invalid_argument if [s < 1]. *)

val even_odd_order : s:int -> int array
(** Order achieving makespan 2 (optimal for s >= 2). *)

val optimal_makespan : s:int -> int
val greedy_makespan : s:int -> int
(** The paper's [s + 1]. *)
