(** List scheduling (Garey–Graham): scan a fixed priority list every
    tick and start every unstarted task whose resources fit (as many
    processors as tasks). *)

type schedule = {
  start : int array;  (** start.(i) = tick task i starts. *)
  makespan : int;
}

val run : Task_system.t -> int array -> schedule
(** Simulate the schedule for a permutation of task indices (highest
    priority first). *)

val identity_order : Task_system.t -> int array

val satisfies_list_property : Task_system.t -> schedule -> bool
(** No task waits at a tick when its demand is satisfiable — the
    defining property of list schedules, reused by the Theorem 9
    machinery. *)
