(** Optimal off-line list schedules — the comparator of Theorem 9.
    Exhaustive branch-and-bound over permutations for small instances,
    deterministic heuristics beyond [exact_limit]. *)

val lower_bound : Task_system.t -> int
(** Max of the heaviest resource's aggregate demand and the longest
    task. *)

val iter_permutations : int -> (int array -> bool) -> unit
(** Visit permutations of [0..n-1]; callback returns [true] to stop. *)

val best_list_schedule : ?exact_limit:int -> Task_system.t -> int array * int
(** Best order found and its makespan (exact for [n <= exact_limit],
    default 8). *)

val optimal_makespan : ?exact_limit:int -> Task_system.t -> int
