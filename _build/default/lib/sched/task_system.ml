(** Task systems in the model of Garey and Graham (Section 4.1).

    A task system is a set of tasks {T1..Tn} and shared resources
    {R1..Rs}.  Each task [Tj] has a length [dur_j > 0] (in integer
    ticks) and uses [Ri(Tj)] units of resource [Ri], normalized to
    [0 <= Ri(Tj) <= 1].  A running task holds its resource units for
    its entire duration; tasks are non-preemptable. *)

type task = {
  id : int;
  dur : int;  (** Length in ticks, > 0. *)
  needs : (int * float) list;
      (** [(resource, amount)] pairs, each amount in (0, 1]. *)
}

type t = {
  tasks : task array;
  n_resources : int;
}

let eps = 1e-9

let task ~id ~dur needs =
  if dur <= 0 then invalid_arg "Task_system.task: dur must be positive";
  List.iter
    (fun (r, a) ->
      if r < 0 then invalid_arg "Task_system.task: negative resource index";
      if a <= 0. || a > 1. +. eps then
        invalid_arg "Task_system.task: amount out of (0,1]")
    needs;
  { id; dur; needs }

let make tasks =
  let n_resources =
    List.fold_left
      (fun acc t -> List.fold_left (fun acc (r, _) -> max acc (r + 1)) acc t.needs)
      0 tasks
  in
  { tasks = Array.of_list tasks; n_resources }

let n_tasks t = Array.length t.tasks
let n_resources t = t.n_resources
let total_work t = Array.fold_left (fun acc task -> acc + task.dur) 0 t.tasks

(** Amount of resource [r] used by [task]. *)
let usage task r =
  match List.assoc_opt r task.needs with Some a -> a | None -> 0.

(** Do two tasks conflict, i.e. does some resource overflow if they run
    together?  With update access = 1.0 this is the paper's conflict
    relation. *)
let conflicts a b =
  List.exists
    (fun (r, amt) -> amt +. usage b r > 1. +. eps)
    a.needs

(** Transaction-style helper: an update uses the whole object, a read
    uses [1/n] of it (Section 4.2). *)
let update_amount = 1.0

let read_amount ~n = 1.0 /. float_of_int (max 1 n)
