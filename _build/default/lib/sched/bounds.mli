(** The bounds proved or cited in the paper. *)

val list_schedule_factor : s:int -> int
(** Garey–Graham: any list schedule is within [(s+1)] of optimal. *)

val pending_commit_factor : s:int -> int
(** Theorem 9: [s(s+1) + 2]. *)

val within_theorem9 : s:int -> measured:int -> optimal:int -> bool
