lib/sched/task_system.mli:
