lib/sched/adversarial.ml: Array Fun List List_scheduler Task_system
