lib/sched/optimal.ml: Array Fun List List_scheduler Task_system
