lib/sched/bounds.mli:
