lib/sched/matching.ml: Array Graph List Queue
