lib/sched/list_scheduler.mli: Task_system
