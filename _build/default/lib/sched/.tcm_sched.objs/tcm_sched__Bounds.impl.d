lib/sched/bounds.ml:
