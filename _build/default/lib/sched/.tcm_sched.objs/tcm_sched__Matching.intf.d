lib/sched/matching.mli: Graph
