lib/sched/optimal.mli: Task_system
