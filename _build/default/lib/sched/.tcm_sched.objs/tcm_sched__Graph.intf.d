lib/sched/graph.mli:
