lib/sched/graph.ml: Array List
