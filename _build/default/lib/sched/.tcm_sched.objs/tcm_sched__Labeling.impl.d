lib/sched/labeling.ml: Array Graph List Matching
