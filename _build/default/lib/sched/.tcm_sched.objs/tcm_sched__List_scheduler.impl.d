lib/sched/list_scheduler.ml: Array Fun List Task_system
