lib/sched/task_system.ml: Array List
