lib/sched/labeling.mli: Graph
