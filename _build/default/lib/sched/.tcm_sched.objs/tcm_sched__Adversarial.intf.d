lib/sched/adversarial.mli: Task_system
