(** Maximum bipartite matching (Hopcroft–Karp), used to compute graph
    scores: S(G) is a minimum fractional vertex cover, which equals
    half the maximum matching of the bipartite double cover. *)

type bipartite

val make : n_left:int -> n_right:int -> (int * int) list -> bipartite
(** @raise Invalid_argument on out-of-range edges. *)

val max_matching : bipartite -> int

val double_cover : Graph.t -> bipartite
(** Each vertex splits into left and right copies; each edge {u,v}
    yields (uL,vR) and (vL,uR). *)
