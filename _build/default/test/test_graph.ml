(** Tests for the Lemma 7 machinery: graphs, Hopcroft–Karp matching,
    fractional-vertex-cover scores, and the Lemma 7 / Corollary 8
    partition bounds. *)

open Tcm_sched

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_score name expected g = Alcotest.(check (float 1e-9)) name expected (Labeling.score g)

(* ------------------------------------------------------------------ *)
(* Graph basics                                                        *)
(* ------------------------------------------------------------------ *)

let t_empty () =
  let g = Graph.empty 4 in
  check_int "no edges" 0 (Graph.n_edges g);
  check_int "vertices" 4 (Graph.n_vertices g)

let t_add_edge_dedup () =
  let g = Graph.empty 3 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 0;
  Graph.add_edge g 0 1;
  Graph.add_edge g 2 2;
  (* self-loop ignored *)
  check_int "one edge" 1 (Graph.n_edges g);
  check_bool "has_edge both ways" true (Graph.has_edge g 1 0)

let t_of_edges () =
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  check_int "path edges" 3 (Graph.n_edges g);
  Alcotest.(check (list int)) "neighbours of 1" [ 0; 2 ] (Graph.neighbours g 1)

let t_out_of_range () =
  let g = Graph.empty 2 in
  Alcotest.check_raises "out of range" (Invalid_argument "Graph.add_edge: out of range")
    (fun () -> Graph.add_edge g 0 5)

(* Edge count of G(m,s): vertices n = (s+1)m, edges = pairs with
   |a-b| >= m, i.e. C(n,2) minus pairs with difference < m. *)
let gms_expected_edges m s =
  let n = (s + 1) * m in
  let total = n * (n - 1) / 2 in
  let close = ((m - 1) * n) - (m * (m - 1) / 2) in
  total - close

let t_gms_shape () =
  List.iter
    (fun (m, s) ->
      let g = Graph.g_m_s ~m ~s in
      check_int (Printf.sprintf "G(%d,%d) vertices" m s) ((s + 1) * m) (Graph.n_vertices g);
      check_int (Printf.sprintf "G(%d,%d) edges" m s) (gms_expected_edges m s) (Graph.n_edges g))
    [ (1, 1); (2, 2); (3, 2); (2, 4) ]

let t_gms_g11_is_edge () =
  (* G(1,1) has 2 vertices and the single edge (0,1). *)
  let g = Graph.g_m_s ~m:1 ~s:1 in
  check_bool "edge present" true (Graph.has_edge g 0 1)

let t_partition () =
  let g = Graph.g_m_s ~m:2 ~s:2 in
  let parts = Graph.partition_edges g 2 (fun i _ -> i mod 2) in
  let total = List.fold_left (fun acc h -> acc + Graph.n_edges h) 0 parts in
  check_int "edges preserved" (Graph.n_edges g) total;
  List.iter (fun h -> check_int "spanning" (Graph.n_vertices g) (Graph.n_vertices h)) parts

let t_partition_bad_assign () =
  let g = Graph.of_edges 2 [ (0, 1) ] in
  Alcotest.check_raises "bad part index" (Invalid_argument "Graph.partition_edges: bad part")
    (fun () -> ignore (Graph.partition_edges g 2 (fun _ _ -> 7)))

(* ------------------------------------------------------------------ *)
(* Matching                                                            *)
(* ------------------------------------------------------------------ *)

let t_matching_empty () =
  let g = Matching.make ~n_left:3 ~n_right:3 [] in
  check_int "empty" 0 (Matching.max_matching g)

let t_matching_perfect () =
  let g = Matching.make ~n_left:3 ~n_right:3 [ (0, 0); (1, 1); (2, 2) ] in
  check_int "perfect" 3 (Matching.max_matching g)

let t_matching_star () =
  (* One left vertex connected to all rights: matching 1. *)
  let g = Matching.make ~n_left:1 ~n_right:4 [ (0, 0); (0, 1); (0, 2); (0, 3) ] in
  check_int "star" 1 (Matching.max_matching g)

let t_matching_needs_augmenting () =
  (* Classic instance where greedy matching is suboptimal: 0-0, 0-1,
     1-0.  Maximum is 2 via an augmenting path. *)
  let g = Matching.make ~n_left:2 ~n_right:2 [ (0, 0); (0, 1); (1, 0) ] in
  check_int "augmented" 2 (Matching.max_matching g)

let t_matching_complete_bipartite () =
  let edges = List.concat_map (fun u -> List.init 4 (fun v -> (u, v))) [ 0; 1; 2; 3 ] in
  let g = Matching.make ~n_left:4 ~n_right:4 edges in
  check_int "K44" 4 (Matching.max_matching g)

let t_matching_out_of_range () =
  Alcotest.check_raises "edge range" (Invalid_argument "Matching.make: edge out of range")
    (fun () -> ignore (Matching.make ~n_left:1 ~n_right:1 [ (0, 3) ]))

(* ------------------------------------------------------------------ *)
(* Scores (fractional vertex cover)                                    *)
(* ------------------------------------------------------------------ *)

let t_score_isolated () = check_score "no edges" 0. (Graph.empty 5)
let t_score_edge () = check_score "single edge" 1. (Graph.of_edges 2 [ (0, 1) ])
let t_score_triangle () = check_score "triangle" 1.5 (Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ])

let t_score_star () = check_score "star K1,3" 1. (Graph.of_edges 4 [ (0, 1); (0, 2); (0, 3) ])

let t_score_c5 () =
  (* Odd cycle C5: fractional cover = 5/2. *)
  check_score "C5" 2.5 (Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ])

let t_score_k4 () =
  (* K_n: everyone at 1/2, score n/2. *)
  let g = Graph.of_edges 4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ] in
  check_score "K4" 2. g

let t_score_path () =
  (* P4 (3 edges): König — fractional equals integral on bipartite. *)
  check_score "P4" 2. (Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ])

let t_valid_labeling () =
  let g = Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  check_bool "half labels valid" true (Labeling.valid g [| 0.5; 0.5; 0.5 |]);
  check_bool "zero labels invalid" false (Labeling.valid g [| 0.; 0.; 1. |]);
  check_bool "negative invalid" false (Labeling.valid g [| 1.5; -0.5; 1. |]);
  check_bool "wrong length invalid" false (Labeling.valid g [| 1.; 1. |]);
  Alcotest.(check (float 1e-9)) "sum" 1.5 (Labeling.sum [| 0.5; 0.5; 0.5 |])

(* Score is a lower bound for every valid labeling's sum. *)
let prop_score_lower_bound =
  QCheck.Test.make ~name:"score <= sum of any valid labeling" ~count:100
    QCheck.(pair (int_bound 10_000) (int_range 3 8))
    (fun (seed, n) ->
      let rng = Tcm_stm.Splitmix.create seed in
      let edges =
        List.filter_map
          (fun _ ->
            let u = Tcm_stm.Splitmix.int rng n and v = Tcm_stm.Splitmix.int rng n in
            if u <> v then Some (u, v) else None)
          (List.init (2 * n) Fun.id)
      in
      let g = Graph.of_edges n edges in
      let l = Array.make n 1.0 in
      Labeling.valid g l && Labeling.score g <= Labeling.sum l +. 1e-9)

(* Lemma 7, numerically: any random partition of G(m,s) into s spanning
   subgraphs has max_i S(H_i) >= m. *)
let prop_lemma7 =
  QCheck.Test.make ~name:"lemma 7 on random partitions" ~count:60
    QCheck.(triple (int_bound 100_000) (int_range 1 3) (int_range 1 3))
    (fun (seed, m, s) ->
      let g = Graph.g_m_s ~m ~s in
      let rng = Tcm_stm.Splitmix.create seed in
      let parts = Graph.partition_edges g s (fun _ _ -> Tcm_stm.Splitmix.int rng s) in
      snd (Labeling.lemma7_check ~m parts))

let t_corollary8_small () =
  let m = 1 and s = 1 in
  let k = s * (s + 1) / 2 in
  let g = Graph.g_m_s ~m:(2 * m) ~s:k in
  let parts = Graph.partition_edges g k (fun _ _ -> 0) in
  let _, ok = Labeling.corollary8_check ~m parts in
  check_bool "corollary 8 base case" true ok

let t_whole_gms_score () =
  (* The un-partitioned G(m,s) itself scores >= m (consistency). *)
  List.iter
    (fun (m, s) ->
      let g = Graph.g_m_s ~m ~s in
      check_bool (Printf.sprintf "S(G(%d,%d)) >= %d" m s m) true (Labeling.score_x2 g >= 2 * m))
    [ (1, 1); (2, 2); (3, 2); (2, 3) ]

let () =
  Alcotest.run "graph"
    [
      ( "graph",
        [
          Alcotest.test_case "empty" `Quick t_empty;
          Alcotest.test_case "edge dedup and self-loops" `Quick t_add_edge_dedup;
          Alcotest.test_case "of_edges / neighbours" `Quick t_of_edges;
          Alcotest.test_case "range check" `Quick t_out_of_range;
          Alcotest.test_case "G(m,s) shape" `Quick t_gms_shape;
          Alcotest.test_case "G(1,1) is an edge" `Quick t_gms_g11_is_edge;
          Alcotest.test_case "edge partition" `Quick t_partition;
          Alcotest.test_case "partition bad index" `Quick t_partition_bad_assign;
        ] );
      ( "matching",
        [
          Alcotest.test_case "empty" `Quick t_matching_empty;
          Alcotest.test_case "perfect" `Quick t_matching_perfect;
          Alcotest.test_case "star" `Quick t_matching_star;
          Alcotest.test_case "augmenting path" `Quick t_matching_needs_augmenting;
          Alcotest.test_case "complete bipartite" `Quick t_matching_complete_bipartite;
          Alcotest.test_case "edge range check" `Quick t_matching_out_of_range;
        ] );
      ( "labeling",
        [
          Alcotest.test_case "isolated vertices" `Quick t_score_isolated;
          Alcotest.test_case "single edge" `Quick t_score_edge;
          Alcotest.test_case "triangle" `Quick t_score_triangle;
          Alcotest.test_case "star" `Quick t_score_star;
          Alcotest.test_case "odd cycle C5" `Quick t_score_c5;
          Alcotest.test_case "K4" `Quick t_score_k4;
          Alcotest.test_case "path P4" `Quick t_score_path;
          Alcotest.test_case "labeling validity" `Quick t_valid_labeling;
          QCheck_alcotest.to_alcotest prop_score_lower_bound;
        ] );
      ( "lemma7",
        [
          QCheck_alcotest.to_alcotest prop_lemma7;
          Alcotest.test_case "corollary 8 base case" `Quick t_corollary8_small;
          Alcotest.test_case "whole G(m,s) scores >= m" `Quick t_whole_gms_score;
        ] );
    ]
