test/test_graph.ml: Alcotest Array Fun Graph Labeling List Matching Printf QCheck QCheck_alcotest Tcm_sched Tcm_stm
