test/test_sched.ml: Adversarial Alcotest Array Bounds List List_scheduler Optimal Printf QCheck QCheck_alcotest Task_system Tcm_sched Tcm_sim
