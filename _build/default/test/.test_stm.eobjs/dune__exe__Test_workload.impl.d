test/test_workload.ml: Alcotest Array Buffer Figures Format Harness List Report Sim_load Stats String Tcm_sim Tcm_stm Tcm_structures Tcm_workload
