test/test_stm.ml: Alcotest Array Atomic Domain List Printf QCheck QCheck_alcotest Runtime Splitmix Stm Tcm_core Tcm_stm Tvar Txn Unix
