test/test_sim.ml: Alcotest Array Engine List Option Policy Printf Props QCheck QCheck_alcotest Scenarios Spec String Tcm_sched Tcm_sim Tcm_workload Timeline
