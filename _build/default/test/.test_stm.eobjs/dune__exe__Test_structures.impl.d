test/test_structures.ml: Alcotest Array Atomic Domain Fun Hashtbl List Printf QCheck QCheck_alcotest Queue Splitmix Stm Tcm_core Tcm_stm Tcm_structures Unix
