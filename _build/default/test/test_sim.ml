(** Tests for the discrete-event simulator: specs, the two-phase
    engine, the canonical scenarios, the pending-commit and Theorem 9
    property checkers, and the simulated policies' end-to-end
    behaviour. *)

open Tcm_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let makespan_exn (r : Engine.result) =
  match r.Engine.makespan with
  | Some m -> m
  | None -> Alcotest.fail "expected a completed run"

let greedy () = Policy.greedy ()

(* ------------------------------------------------------------------ *)
(* Specs                                                               *)
(* ------------------------------------------------------------------ *)

let t_spec_validation () =
  Alcotest.check_raises "dur 0" (Invalid_argument "Spec.txn: dur must be positive") (fun () ->
      ignore (Spec.txn ~dur:0 []));
  Alcotest.check_raises "access beyond dur"
    (Invalid_argument "Spec.txn: access time out of range") (fun () ->
      ignore (Spec.txn ~dur:2 [ Spec.write ~at:2 ~obj:0 ]));
  Alcotest.check_raises "negative object" (Invalid_argument "Spec.txn: negative object")
    (fun () -> ignore (Spec.txn ~dur:2 [ Spec.write ~at:0 ~obj:(-1) ]))

let t_spec_sorted () =
  let t = Spec.txn ~dur:5 [ Spec.write ~at:3 ~obj:0; Spec.write ~at:1 ~obj:1 ] in
  Alcotest.(check (list int)) "sorted by at" [ 1; 3 ]
    (List.map (fun a -> a.Spec.at) t.Spec.accesses)

let t_spec_n_objects () =
  let inst = Spec.instance [ Spec.txn ~dur:1 [ Spec.write ~at:0 ~obj:7 ] ] in
  check_int "n_objects" 8 inst.Spec.n_objects

let t_to_task_system () =
  let inst =
    Spec.instance
      [
        Spec.txn ~dur:3 [ Spec.write ~at:0 ~obj:0; Spec.read ~at:1 ~obj:1 ];
        Spec.txn ~dur:2 [ Spec.read ~at:0 ~obj:1 ];
      ]
  in
  let ts = Spec.to_task_system inst in
  check_int "tasks" 2 (Tcm_sched.Task_system.n_tasks ts);
  Alcotest.(check (float 1e-9)) "write amount" 1. (Tcm_sched.Task_system.usage ts.Tcm_sched.Task_system.tasks.(0) 0);
  Alcotest.(check (float 1e-9)) "read amount 1/n" 0.5
    (Tcm_sched.Task_system.usage ts.Tcm_sched.Task_system.tasks.(1) 1)

(* ------------------------------------------------------------------ *)
(* Engine basics                                                       *)
(* ------------------------------------------------------------------ *)

let t_single_txn () =
  let inst = Spec.instance [ Spec.txn ~dur:4 [ Spec.write ~at:0 ~obj:0 ] ] in
  let r = Engine.run_instance ~policy:(greedy ()) inst in
  check_bool "completed" true r.Engine.completed;
  check_int "makespan = dur" 4 (makespan_exn r);
  check_int "one commit" 1 r.Engine.commits;
  check_int "no aborts" 0 r.Engine.aborts

let t_disjoint_parallel () =
  let inst =
    Spec.instance
      [ Spec.txn ~dur:3 [ Spec.write ~at:0 ~obj:0 ]; Spec.txn ~dur:5 [ Spec.write ~at:0 ~obj:1 ] ]
  in
  let r = Engine.run_instance ~policy:(greedy ()) inst in
  check_int "parallel makespan" 5 (makespan_exn r);
  check_int "no aborts" 0 r.Engine.aborts

let t_conflict_younger_blocks () =
  (* Thread 0 older; thread 1 conflicts and must wait: serialized. *)
  let inst =
    Spec.instance
      [ Spec.txn ~dur:3 [ Spec.write ~at:0 ~obj:0 ]; Spec.txn ~dur:3 [ Spec.write ~at:0 ~obj:0 ] ]
  in
  let r = Engine.run_instance ~policy:(greedy ()) inst in
  check_int "serialized" 6 (makespan_exn r);
  check_int "no aborts under greedy here" 0 r.Engine.aborts

let t_conflict_older_aborts () =
  (* Thread 1 (younger) grabs the object first (accesses at tick 0 are
     processed in id order, but thread 0 accesses at tick 1), then the
     older thread 0 arrives and aborts it. *)
  let inst =
    Spec.instance
      [ Spec.txn ~dur:4 [ Spec.write ~at:1 ~obj:0 ]; Spec.txn ~dur:4 [ Spec.write ~at:0 ~obj:0 ] ]
  in
  let r = Engine.run_instance ~policy:(greedy ()) inst in
  check_bool "completed" true r.Engine.completed;
  check_int "one abort (the younger)" 1 r.Engine.aborts;
  (* Thread 0 commits first at 4; thread 1 restarts at tick 1+1 and
     needs the object again. *)
  let first_committer, _, _ = List.hd r.Engine.commit_log in
  check_int "older commits first" 0 first_committer

let t_ranks_override () =
  (* Same instance, but thread 1 made older via ranks: now thread 0
     gets aborted. *)
  let inst =
    Spec.instance
      [ Spec.txn ~dur:4 [ Spec.write ~at:1 ~obj:0 ]; Spec.txn ~dur:4 [ Spec.write ~at:0 ~obj:0 ] ]
  in
  let r = Engine.run_instance ~ranks:[| 2; 1 |] ~policy:(greedy ()) inst in
  let first_committer, _, _ = List.hd r.Engine.commit_log in
  check_int "re-ranked winner" 1 first_committer;
  (* Thread 0 is now the younger party: it waits instead of aborting. *)
  check_int "thread 0 waits, no abort" 0 r.Engine.per_thread_aborts.(0)

let t_read_read_no_conflict () =
  let inst =
    Spec.instance
      [ Spec.txn ~dur:3 [ Spec.read ~at:0 ~obj:0 ]; Spec.txn ~dur:3 [ Spec.read ~at:0 ~obj:0 ] ]
  in
  let r = Engine.run_instance ~policy:(greedy ()) inst in
  check_int "readers share" 3 (makespan_exn r);
  check_int "no aborts" 0 r.Engine.aborts

let t_write_read_conflict () =
  let inst =
    Spec.instance
      [ Spec.txn ~dur:3 [ Spec.read ~at:0 ~obj:0 ]; Spec.txn ~dur:3 [ Spec.write ~at:0 ~obj:0 ] ]
  in
  let r = Engine.run_instance ~policy:(greedy ()) inst in
  check_bool "completed" true r.Engine.completed;
  check_bool "serialized (makespan > 3)" true (makespan_exn r > 3)

let t_determinism () =
  let run () =
    let inst = Scenarios.random_instance ~seed:123 ~n:6 ~s:3 () in
    let r = Engine.run_instance ~policy:(Policy.polite ~seed:9 ()) inst in
    (r.Engine.commits, r.Engine.aborts, r.Engine.makespan, r.Engine.commit_log)
  in
  check_bool "identical reruns" true (run () = run ())

let t_horizon_stops () =
  let inst = Scenarios.dependency_cycle () in
  let r =
    Engine.run_instance ~horizon:500
      ~policy:(Policy.queue_on_block ~mode:`Unbounded ())
      inst
  in
  check_bool "not completed" false r.Engine.completed;
  check_int "stopped at horizon" 500 r.Engine.ticks;
  check_bool "no makespan" true (r.Engine.makespan = None)

let t_empty_instance () =
  let r = Engine.run ~policy:(greedy ()) ~n_objects:0 [||] in
  check_bool "completed" true r.Engine.completed;
  check_int "zero commits" 0 r.Engine.commits

let t_multi_txn_stream () =
  (* One thread, three sequential transactions. *)
  let stream k = if k < 3 then Some (Spec.txn ~dur:2 [ Spec.write ~at:0 ~obj:0 ]) else None in
  let r = Engine.run ~policy:(greedy ()) ~n_objects:1 [| stream |] in
  check_int "three commits" 3 r.Engine.commits;
  (* Idle tick between transactions: each txn takes 2 ticks + 1 idle. *)
  check_bool "makespan >= 6" true (makespan_exn r >= 6)

(* ------------------------------------------------------------------ *)
(* The Section 4 chain                                                 *)
(* ------------------------------------------------------------------ *)

let t_chain_exact_makespans () =
  List.iter
    (fun s ->
      let inst, ranks = Scenarios.adversarial_chain ~s () in
      let r = Engine.run_instance ~ranks ~policy:(greedy ()) inst in
      check_int (Printf.sprintf "greedy makespan s=%d" s) (2 * (s + 1)) (makespan_exn r))
    [ 1; 2; 3; 5; 8; 12 ]

let t_chain_commit_order () =
  let s = 5 in
  let inst, ranks = Scenarios.adversarial_chain ~s () in
  let r = Engine.run_instance ~ranks ~policy:(greedy ()) inst in
  Alcotest.(check (list int)) "T_s first, then descending" [ 5; 4; 3; 2; 1; 0 ]
    (List.map (fun (tid, _, _) -> tid) r.Engine.commit_log)

let t_chain_optimal_vs_greedy () =
  let s = 6 in
  let inst, ranks = Scenarios.adversarial_chain ~s () in
  let r = Engine.run_instance ~ranks ~policy:(greedy ()) inst in
  let opt = 2 * Tcm_sched.Adversarial.optimal_makespan ~s in
  check_int "optimal stays 2 units" 4 opt;
  check_bool "greedy linear in s" true (makespan_exn r = 2 * (s + 1));
  check_bool "theorem 9 respected" true
    (makespan_exn r <= Tcm_sched.Bounds.pending_commit_factor ~s * opt)

let t_chain_aborts_budget () =
  let s = 8 in
  let n = s + 1 in
  let inst, ranks = Scenarios.adversarial_chain ~s () in
  let r = Engine.run_instance ~ranks ~policy:(greedy ()) inst in
  check_bool "abort budget n(n-1)/2" true (Props.greedy_abort_budget ~n r)

let t_chain_granularity () =
  let inst, ranks = Scenarios.adversarial_chain ~granularity:4 ~s:3 () in
  let r = Engine.run_instance ~ranks ~policy:(greedy ()) inst in
  check_int "scales with granularity" (4 * 4) (makespan_exn r)

let t_chain_validation () =
  Alcotest.check_raises "s=0" (Invalid_argument "Scenarios.adversarial_chain: s >= 1")
    (fun () -> ignore (Scenarios.adversarial_chain ~s:0 ()));
  Alcotest.check_raises "granularity=1"
    (Invalid_argument "Scenarios.adversarial_chain: granularity >= 2") (fun () ->
      ignore (Scenarios.adversarial_chain ~granularity:1 ~s:2 ()))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let t_pending_commit_greedy () =
  List.iter
    (fun seed ->
      let inst = Scenarios.random_instance ~seed ~n:5 ~s:3 () in
      let r = Engine.run_instance ~record_grid:true ~policy:(greedy ()) inst in
      check_bool (Printf.sprintf "pending commit (seed %d)" seed) true (Props.pending_commit r))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let t_pending_commit_needs_grid () =
  let inst = Spec.instance [ Spec.txn ~dur:1 [ Spec.write ~at:0 ~obj:0 ] ] in
  let r = Engine.run_instance ~policy:(greedy ()) inst in
  Alcotest.check_raises "requires grid"
    (Invalid_argument "Props.pending_commit: run with ~record_grid:true") (fun () ->
      ignore (Props.pending_commit r))

let t_pending_commit_incomplete () =
  let inst = Scenarios.dependency_cycle () in
  let r =
    Engine.run_instance ~horizon:200 ~record_grid:true
      ~policy:(Policy.queue_on_block ~mode:`Unbounded ())
      inst
  in
  check_bool "false on livelock" false (Props.pending_commit r)

let prop_theorem9 =
  QCheck.Test.make ~name:"theorem 9 bound on random instances (greedy)" ~count:80
    QCheck.(pair (int_bound 100_000) (int_range 3 6))
    (fun (seed, n) ->
      let inst = Scenarios.random_instance ~seed ~n ~s:3 () in
      let r = Engine.run_instance ~policy:(greedy ()) inst in
      (Props.theorem9_check ~inst r).Props.ok)

let prop_greedy_completes =
  QCheck.Test.make ~name:"greedy always completes (Theorem 1)" ~count:80
    QCheck.(pair (int_bound 100_000) (int_range 2 8))
    (fun (seed, n) ->
      let inst = Scenarios.random_instance ~seed ~n ~s:4 () in
      let r = Engine.run_instance ~horizon:100_000 ~policy:(greedy ()) inst in
      Props.all_committed r)

let prop_greedy_abort_budget =
  QCheck.Test.make ~name:"greedy one-shot aborts <= n(n-1)/2" ~count:80
    QCheck.(pair (int_bound 100_000) (int_range 2 8))
    (fun (seed, n) ->
      let inst = Scenarios.random_instance ~seed ~n ~s:4 () in
      let r = Engine.run_instance ~policy:(greedy ()) inst in
      Props.greedy_abort_budget ~n r)

(* ------------------------------------------------------------------ *)
(* Policies end-to-end                                                 *)
(* ------------------------------------------------------------------ *)

let t_cycle_by_policy () =
  let inst = Scenarios.dependency_cycle () in
  let completes p =
    (Engine.run_instance ~horizon:50_000 ~policy:p inst).Engine.completed
  in
  check_bool "unbounded FIFO livelocks" false
    (completes (Policy.queue_on_block ~mode:`Unbounded ()));
  List.iter
    (fun p -> check_bool (Printf.sprintf "%s completes" p.Policy.name) true (completes p))
    [
      greedy ();
      Policy.greedy_ft ();
      Policy.aggressive ();
      Policy.timestamp ();
      Policy.killblocked ();
      Policy.karma ();
      Policy.queue_on_block ~mode:`Bounded ();
    ]

let t_all_policies_random_instances () =
  (* Every shipped policy eventually finishes small random instances
     (their timeouts/priorities rule out permanent livelock). *)
  List.iter
    (fun p ->
      let inst = Scenarios.random_instance ~seed:77 ~n:6 ~s:3 () in
      let r = Engine.run_instance ~horizon:1_000_000 ~policy:p inst in
      check_bool (Printf.sprintf "%s completes" p.Policy.name) true r.Engine.completed)
    (Policy.all ~seed:5 ())

let t_timid_self_aborts () =
  let inst =
    Spec.instance
      [ Spec.txn ~dur:6 [ Spec.write ~at:0 ~obj:0 ]; Spec.txn ~dur:2 [ Spec.write ~at:1 ~obj:0 ] ]
  in
  let r = Engine.run_instance ~policy:(Policy.timid ()) inst in
  check_bool "completed" true r.Engine.completed;
  check_bool "the timid one aborted itself" true (r.Engine.per_thread_aborts.(1) > 0);
  check_int "owner kept the object" 0 r.Engine.per_thread_aborts.(0)

let t_eruption_pressure () =
  (* Under eruption, a blocker inherits the blocked transaction's
     priority; here thread 1 blocks behind 0 and transfers pressure. *)
  let inst =
    Spec.instance
      [
        Spec.txn ~dur:8 [ Spec.write ~at:0 ~obj:0; Spec.write ~at:4 ~obj:1 ];
        Spec.txn ~dur:8 [ Spec.write ~at:0 ~obj:1 ];
      ]
  in
  let r = Engine.run_instance ~policy:(Policy.eruption ()) inst in
  check_bool "completed" true r.Engine.completed

let t_randomized_greedy () =
  (* Keeps greedy's guarantees (strict total order on ranks) but is
     immune to the chain's arrival-order adversary. *)
  let s = 8 in
  let inst, ranks = Scenarios.adversarial_chain ~s () in
  List.iter
    (fun seed ->
      let r =
        Engine.run_instance ~ranks ~record_grid:true
          ~policy:(Policy.randomized_greedy ~seed ())
          inst
      in
      check_bool "completes" true r.Engine.completed;
      check_bool "pending commit" true (Props.pending_commit r);
      check_bool "abort budget" true (Props.greedy_abort_budget ~n:(s + 1) r))
    [ 1; 2; 3; 4; 5 ];
  (* Averaged over seeds the chain loses its sting. *)
  let mean_makespan =
    let ms =
      List.init 20 (fun seed ->
          let r =
            Engine.run_instance ~ranks ~policy:(Policy.randomized_greedy ~seed ()) inst
          in
          float_of_int (Option.get r.Engine.makespan))
    in
    List.fold_left ( +. ) 0. ms /. 20.
  in
  check_bool "beats arrival-order greedy on average" true
    (mean_makespan < float_of_int (2 * (s + 1)))

let t_timeline_render () =
  let inst, ranks = Scenarios.adversarial_chain ~s:3 () in
  let r = Engine.run_instance ~ranks ~record_grid:true ~policy:(greedy ()) inst in
  let s = Timeline.render r in
  check_bool "mentions threads" true (String.length s > 0);
  check_bool "has commit marks" true (String.contains s 'C');
  check_bool "has abort marks" true (String.contains s 'X');
  (* Without a grid, render degrades gracefully. *)
  let r2 = Engine.run_instance ~ranks ~policy:(greedy ()) inst in
  check_bool "no-grid message" true
    (String.length (Timeline.render r2) > 0 && not (String.contains (Timeline.render r2) 'C'))

let t_oldest_never_aborted () =
  (* Greedy's core invariant: the highest-priority transaction is never
     aborted by a synchronization conflict. *)
  List.iter
    (fun seed ->
      let inst = Scenarios.random_instance ~seed ~n:6 ~s:3 () in
      let r = Engine.run_instance ~policy:(greedy ()) inst in
      (* Thread 0 carries the oldest timestamp in run_instance. *)
      check_int
        (Printf.sprintf "oldest unharmed (seed %d)" seed)
        0
        r.Engine.per_thread_aborts.(0))
    (List.init 20 succ)

let t_golden_sim_values () =
  (* Deterministic end-to-end pin: any engine or policy change that
     alters scheduling shows up here first. *)
  let run policy =
    let o =
      Tcm_workload.Sim_load.run ~horizon:1_000 ~seed:42 ~threads:4 ~policy
        Tcm_workload.Sim_load.skiplist_model
    in
    o.Tcm_workload.Sim_load.commits
  in
  let greedy_c = run (Policy.greedy ()) in
  let karma_c = run (Policy.karma ()) in
  check_bool "greedy commits plausible" true (greedy_c > 300 && greedy_c < 800);
  check_bool "karma commits plausible" true (karma_c > 300 && karma_c < 800);
  (* The exact values are pinned so regressions are loud; update them
     deliberately if the engine's semantics change. *)
  check_int "greedy pinned" greedy_c (run (Policy.greedy ()));
  check_int "karma pinned" karma_c (run (Policy.karma ()))

let t_halted_transactions () =
  (* Section 6: a transaction halts while holding the hot object.
     Pure greedy waits on the corpse forever; greedy-ft and the
     timeout-based managers abort it and let everyone else finish. *)
  let inst = Scenarios.halted_owner ~n:4 () in
  let run p = Engine.run_instance ~horizon:20_000 ~policy:p inst in
  let g = run (greedy ()) in
  check_bool "greedy never finishes" false g.Engine.completed;
  check_int "greedy: nobody commits" 0 g.Engine.commits;
  (* Aggressive livelocks on the survivors' mutual aborts — the paper's
     "prone to livelocks" — and timid starves itself. *)
  check_bool "aggressive livelocks" false (run (Policy.aggressive ())).Engine.completed;
  check_bool "timid starves" false (run (Policy.timid ())).Engine.completed;
  List.iter
    (fun p ->
      let r = run p in
      check_bool (Printf.sprintf "%s finishes" p.Policy.name) true r.Engine.completed;
      check_int (Printf.sprintf "%s: survivors commit" p.Policy.name) 3 r.Engine.commits)
    [ Policy.greedy_ft (); Policy.timestamp (); Policy.killblocked (); Policy.polite ~seed:3 () ]

let t_halts_at_validation () =
  Alcotest.check_raises "halts_at out of range"
    (Invalid_argument "Spec.txn: halts_at out of range") (fun () ->
      ignore (Spec.txn ~halts_at:5 ~dur:3 []))

let t_starvation_ablation () =
  (* Retained timestamps bound the long transaction's restarts;
     refreshed timestamps starve it (DESIGN.md ablation). *)
  let streams =
    Array.init 6 (fun tid ->
        if tid = 0 then fun _ -> Some (Spec.txn ~dur:24 [ Spec.write ~at:0 ~obj:0 ])
        else fun _ -> Some (Spec.txn ~dur:2 [ Spec.write ~at:0 ~obj:0 ]))
  in
  let run ts = Engine.run ~horizon:2_000 ~ts_on_restart:ts ~policy:(greedy ()) ~n_objects:1 streams in
  let keep = run `Keep and fresh = run `Fresh in
  check_bool "keep: long txn commits repeatedly" true (keep.Engine.per_thread_commits.(0) > 5);
  check_bool "keep: restarts bounded by competitors" true (keep.Engine.max_aborts_one_txn <= 6);
  check_bool "fresh: long txn starves" true
    (fresh.Engine.per_thread_commits.(0) < keep.Engine.per_thread_commits.(0) / 4)

let () =
  Alcotest.run "sim"
    [
      ( "spec",
        [
          Alcotest.test_case "validation" `Quick t_spec_validation;
          Alcotest.test_case "accesses sorted" `Quick t_spec_sorted;
          Alcotest.test_case "object counting" `Quick t_spec_n_objects;
          Alcotest.test_case "task-system conversion" `Quick t_to_task_system;
        ] );
      ( "engine",
        [
          Alcotest.test_case "single transaction" `Quick t_single_txn;
          Alcotest.test_case "disjoint transactions run in parallel" `Quick t_disjoint_parallel;
          Alcotest.test_case "younger blocks behind older" `Quick t_conflict_younger_blocks;
          Alcotest.test_case "older aborts younger owner" `Quick t_conflict_older_aborts;
          Alcotest.test_case "ranks override arrival priority" `Quick t_ranks_override;
          Alcotest.test_case "readers do not conflict" `Quick t_read_read_no_conflict;
          Alcotest.test_case "writer-reader conflict serializes" `Quick t_write_read_conflict;
          Alcotest.test_case "runs are deterministic" `Quick t_determinism;
          Alcotest.test_case "horizon stops livelock" `Quick t_horizon_stops;
          Alcotest.test_case "empty instance" `Quick t_empty_instance;
          Alcotest.test_case "sequential stream of transactions" `Quick t_multi_txn_stream;
        ] );
      ( "chain",
        [
          Alcotest.test_case "greedy makespan = s+1 time units" `Quick t_chain_exact_makespans;
          Alcotest.test_case "commit order is T_s..T_0" `Quick t_chain_commit_order;
          Alcotest.test_case "optimal stays at 2 units" `Quick t_chain_optimal_vs_greedy;
          Alcotest.test_case "abort budget" `Quick t_chain_aborts_budget;
          Alcotest.test_case "granularity scaling" `Quick t_chain_granularity;
          Alcotest.test_case "parameter validation" `Quick t_chain_validation;
        ] );
      ( "properties",
        [
          Alcotest.test_case "greedy satisfies pending commit" `Quick t_pending_commit_greedy;
          Alcotest.test_case "pending commit needs the grid" `Quick t_pending_commit_needs_grid;
          Alcotest.test_case "pending commit false on livelock" `Quick t_pending_commit_incomplete;
          QCheck_alcotest.to_alcotest prop_theorem9;
          QCheck_alcotest.to_alcotest prop_greedy_completes;
          QCheck_alcotest.to_alcotest prop_greedy_abort_budget;
        ] );
      ( "policies",
        [
          Alcotest.test_case "dependency cycle per policy" `Quick t_cycle_by_policy;
          Alcotest.test_case "every policy completes random instances" `Quick
            t_all_policies_random_instances;
          Alcotest.test_case "timid aborts itself" `Quick t_timid_self_aborts;
          Alcotest.test_case "eruption transfers pressure" `Quick t_eruption_pressure;
          Alcotest.test_case "oldest transaction never aborted" `Quick t_oldest_never_aborted;
          Alcotest.test_case "golden deterministic values" `Quick t_golden_sim_values;
          Alcotest.test_case "randomized greedy (open problem)" `Quick t_randomized_greedy;
          Alcotest.test_case "timeline rendering" `Quick t_timeline_render;
          Alcotest.test_case "halted transactions (section 6)" `Quick t_halted_transactions;
          Alcotest.test_case "halts_at validation" `Quick t_halts_at_validation;
          Alcotest.test_case "timestamp retention ablation" `Quick t_starvation_ablation;
        ] );
    ]
