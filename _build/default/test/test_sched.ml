(** Tests for the Garey–Graham scheduling substrate: task systems, list
    scheduling, the branch-and-bound optimal, the Section 4 adversarial
    chain and the bound arithmetic. *)

open Tcm_sched

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Task systems                                                        *)
(* ------------------------------------------------------------------ *)

let t_dur_positive () =
  Alcotest.check_raises "dur 0 rejected" (Invalid_argument "Task_system.task: dur must be positive")
    (fun () -> ignore (Task_system.task ~id:0 ~dur:0 []))

let t_amount_range () =
  Alcotest.check_raises "amount 0 rejected"
    (Invalid_argument "Task_system.task: amount out of (0,1]") (fun () ->
      ignore (Task_system.task ~id:0 ~dur:1 [ (0, 0.) ]));
  Alcotest.check_raises "amount > 1 rejected"
    (Invalid_argument "Task_system.task: amount out of (0,1]") (fun () ->
      ignore (Task_system.task ~id:0 ~dur:1 [ (0, 1.5) ]))

let t_negative_resource () =
  Alcotest.check_raises "negative resource rejected"
    (Invalid_argument "Task_system.task: negative resource index") (fun () ->
      ignore (Task_system.task ~id:0 ~dur:1 [ (-1, 0.5) ]))

let t_make_counts () =
  let ts =
    Task_system.make
      [ Task_system.task ~id:0 ~dur:2 [ (0, 1.) ]; Task_system.task ~id:1 ~dur:3 [ (4, 0.5) ] ]
  in
  check_int "n_tasks" 2 (Task_system.n_tasks ts);
  check_int "n_resources is max index + 1" 5 (Task_system.n_resources ts);
  check_int "total work" 5 (Task_system.total_work ts)

let t_usage () =
  let task = Task_system.task ~id:0 ~dur:1 [ (0, 0.25); (2, 1.) ] in
  Alcotest.(check (float 1e-9)) "declared" 0.25 (Task_system.usage task 0);
  Alcotest.(check (float 1e-9)) "undeclared" 0. (Task_system.usage task 1)

let t_conflicts () =
  let w0 = Task_system.task ~id:0 ~dur:1 [ (0, 1.) ] in
  let w0' = Task_system.task ~id:1 ~dur:1 [ (0, 1.) ] in
  let w1 = Task_system.task ~id:2 ~dur:1 [ (1, 1.) ] in
  let r0 = Task_system.task ~id:3 ~dur:1 [ (0, 0.25) ] in
  check_bool "writers on same object conflict" true (Task_system.conflicts w0 w0');
  check_bool "disjoint objects do not" false (Task_system.conflicts w0 w1);
  check_bool "reader vs writer conflicts" true (Task_system.conflicts w0 r0);
  check_bool "reader vs reader does not" false (Task_system.conflicts r0 r0)

let t_read_amount () =
  Alcotest.(check (float 1e-9)) "1/n" 0.25 (Task_system.read_amount ~n:4);
  Alcotest.(check (float 1e-9)) "n=0 clamps" 1. (Task_system.read_amount ~n:0)

(* ------------------------------------------------------------------ *)
(* List scheduling                                                     *)
(* ------------------------------------------------------------------ *)

let chain_ts s = Adversarial.task_system ~s

let t_single_task () =
  let ts = Task_system.make [ Task_system.task ~id:0 ~dur:5 [ (0, 1.) ] ] in
  let sch = List_scheduler.run ts [| 0 |] in
  check_int "makespan" 5 sch.List_scheduler.makespan;
  check_int "starts at 0" 0 sch.List_scheduler.start.(0)

let t_conflicting_serialize () =
  let ts =
    Task_system.make
      [ Task_system.task ~id:0 ~dur:2 [ (0, 1.) ]; Task_system.task ~id:1 ~dur:3 [ (0, 1.) ] ]
  in
  let sch = List_scheduler.run ts [| 0; 1 |] in
  check_int "serialized makespan" 5 sch.List_scheduler.makespan;
  check_int "second starts after first" 2 sch.List_scheduler.start.(1)

let t_disjoint_parallel () =
  let ts =
    Task_system.make
      [ Task_system.task ~id:0 ~dur:2 [ (0, 1.) ]; Task_system.task ~id:1 ~dur:3 [ (1, 1.) ] ]
  in
  let sch = List_scheduler.run ts [| 0; 1 |] in
  check_int "parallel makespan" 3 sch.List_scheduler.makespan;
  check_int "both start at 0" 0 sch.List_scheduler.start.(1)

let t_readers_share () =
  (* Four readers at 0.25 each fit together. *)
  let ts =
    Task_system.make (List.init 4 (fun i -> Task_system.task ~id:i ~dur:2 [ (0, 0.25) ]))
  in
  let sch = List_scheduler.run ts [| 0; 1; 2; 3 |] in
  check_int "all share the object" 2 sch.List_scheduler.makespan

let t_order_matters () =
  (* Three tasks on two resources where a bad order wastes time. *)
  let ts =
    Task_system.make
      [
        Task_system.task ~id:0 ~dur:1 [ (0, 1.); (1, 1.) ];
        Task_system.task ~id:1 ~dur:2 [ (0, 1.) ];
        Task_system.task ~id:2 ~dur:2 [ (1, 1.) ];
      ]
  in
  let m order = (List_scheduler.run ts order).List_scheduler.makespan in
  check_int "good order" 3 (m [| 1; 2; 0 |]);
  check_bool "bad order is worse" true (m [| 0; 1; 2 |] >= 3)

let t_list_property_holds () =
  List.iter
    (fun s ->
      let ts = chain_ts s in
      let sch = List_scheduler.run ts (List_scheduler.identity_order ts) in
      check_bool
        (Printf.sprintf "list property, chain s=%d" s)
        true
        (List_scheduler.satisfies_list_property ts sch))
    [ 1; 2; 3; 5 ]

let t_even_odd_chain () =
  let s = 6 in
  let ts = chain_ts s in
  let sch = List_scheduler.run ts (Adversarial.even_odd_order ~s) in
  check_int "even/odd achieves 2" 2 sch.List_scheduler.makespan

(* ------------------------------------------------------------------ *)
(* Optimal search                                                      *)
(* ------------------------------------------------------------------ *)

let t_lower_bound () =
  let ts =
    Task_system.make
      [ Task_system.task ~id:0 ~dur:4 [ (0, 1.) ]; Task_system.task ~id:1 ~dur:3 [ (0, 1.) ] ]
  in
  check_int "work bound" 7 (Optimal.lower_bound ts);
  let ts2 =
    Task_system.make
      [ Task_system.task ~id:0 ~dur:9 [ (0, 0.1) ]; Task_system.task ~id:1 ~dur:1 [ (0, 0.1) ] ]
  in
  check_int "longest-task bound" 9 (Optimal.lower_bound ts2)

let t_optimal_chain () =
  List.iter
    (fun s ->
      check_int
        (Printf.sprintf "chain optimal s=%d" s)
        2
        (Optimal.optimal_makespan (chain_ts s)))
    [ 2; 3; 4; 5 ]

let t_optimal_beats_identity () =
  let ts = chain_ts 5 in
  let id_m = (List_scheduler.run ts (List_scheduler.identity_order ts)).List_scheduler.makespan in
  let opt = Optimal.optimal_makespan ts in
  check_bool "optimal <= identity" true (opt <= id_m)

let t_optimal_large_heuristic () =
  (* n > exact_limit falls back to heuristics but still returns a valid
     upper bound that beats nothing-smarter-than-identity. *)
  let tasks = List.init 12 (fun i -> Task_system.task ~id:i ~dur:(1 + (i mod 3)) [ (i mod 4, 1.) ]) in
  let ts = Task_system.make tasks in
  let opt = Optimal.optimal_makespan ~exact_limit:8 ts in
  check_bool "heuristic bound sane" true (opt >= Optimal.lower_bound ts);
  let id_m = (List_scheduler.run ts (List_scheduler.identity_order ts)).List_scheduler.makespan in
  check_bool "heuristic <= identity" true (opt <= id_m)

(* Garey–Graham: any list schedule is within (s+1) of optimal.  Since
   the true optimum is <= our best list schedule, checking
   any-list <= (s+1) * best-list is implied and exercises both sides. *)
let prop_garey_graham =
  QCheck.Test.make ~name:"any list schedule <= (s+1) * best list schedule" ~count:60
    QCheck.(pair (int_bound 1000) (int_range 2 5))
    (fun (seed, n) ->
      let inst = Tcm_sim.Scenarios.random_instance ~seed ~n ~s:3 () in
      let ts = Tcm_sim.Spec.to_task_system inst in
      let any = (List_scheduler.run ts (List_scheduler.identity_order ts)).List_scheduler.makespan in
      let best = Optimal.optimal_makespan ts in
      any <= Bounds.list_schedule_factor ~s:3 * best)

let prop_list_property =
  QCheck.Test.make ~name:"list scheduler satisfies the list property" ~count:40
    QCheck.(int_bound 1000)
    (fun seed ->
      let inst = Tcm_sim.Scenarios.random_instance ~seed ~n:5 ~s:3 () in
      let ts = Tcm_sim.Spec.to_task_system inst in
      let sch = List_scheduler.run ts (List_scheduler.identity_order ts) in
      List_scheduler.satisfies_list_property ts sch)

(* ------------------------------------------------------------------ *)
(* Adversarial chain & bounds                                          *)
(* ------------------------------------------------------------------ *)

let t_objects_of () =
  Alcotest.(check (list int)) "T0" [ 1 ] (Adversarial.objects_of ~s:4 0);
  Alcotest.(check (list int)) "middle" [ 2; 3 ] (Adversarial.objects_of ~s:4 2);
  Alcotest.(check (list int)) "Ts" [ 4 ] (Adversarial.objects_of ~s:4 4)

let t_chain_shape () =
  let ts = chain_ts 4 in
  check_int "s+1 tasks" 5 (Task_system.n_tasks ts);
  check_int "s resources" 4 (Task_system.n_resources ts)

let t_chain_s1 () = check_int "s=1 optimal" 2 (Adversarial.optimal_makespan ~s:1)

let t_greedy_makespan_formula () =
  check_int "s=7" 8 (Adversarial.greedy_makespan ~s:7)

let t_bad_s () =
  Alcotest.check_raises "s=0 rejected"
    (Invalid_argument "Adversarial.task_system: s >= 1 required") (fun () ->
      ignore (Adversarial.task_system ~s:0))

let t_factors () =
  check_int "list factor" 5 (Bounds.list_schedule_factor ~s:4);
  check_int "theorem 9 factor" 22 (Bounds.pending_commit_factor ~s:4);
  check_bool "within" true (Bounds.within_theorem9 ~s:2 ~measured:8 ~optimal:1);
  check_bool "not within" false (Bounds.within_theorem9 ~s:2 ~measured:9 ~optimal:1)

let () =
  Alcotest.run "sched"
    [
      ( "task_system",
        [
          Alcotest.test_case "dur must be positive" `Quick t_dur_positive;
          Alcotest.test_case "amount range enforced" `Quick t_amount_range;
          Alcotest.test_case "negative resource rejected" `Quick t_negative_resource;
          Alcotest.test_case "make counts" `Quick t_make_counts;
          Alcotest.test_case "usage lookup" `Quick t_usage;
          Alcotest.test_case "conflict relation" `Quick t_conflicts;
          Alcotest.test_case "read amount" `Quick t_read_amount;
        ] );
      ( "list_scheduler",
        [
          Alcotest.test_case "single task" `Quick t_single_task;
          Alcotest.test_case "conflicting tasks serialize" `Quick t_conflicting_serialize;
          Alcotest.test_case "disjoint tasks run in parallel" `Quick t_disjoint_parallel;
          Alcotest.test_case "readers share an object" `Quick t_readers_share;
          Alcotest.test_case "order matters" `Quick t_order_matters;
          Alcotest.test_case "list property holds on chains" `Quick t_list_property_holds;
          Alcotest.test_case "even/odd order achieves 2 on chain" `Quick t_even_odd_chain;
          QCheck_alcotest.to_alcotest prop_list_property;
        ] );
      ( "optimal",
        [
          Alcotest.test_case "lower bounds" `Quick t_lower_bound;
          Alcotest.test_case "chain optimal is 2" `Quick t_optimal_chain;
          Alcotest.test_case "optimal beats identity" `Quick t_optimal_beats_identity;
          Alcotest.test_case "heuristic fallback is sane" `Quick t_optimal_large_heuristic;
          QCheck_alcotest.to_alcotest prop_garey_graham;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "objects per transaction" `Quick t_objects_of;
          Alcotest.test_case "task system shape" `Quick t_chain_shape;
          Alcotest.test_case "s=1 optimal" `Quick t_chain_s1;
          Alcotest.test_case "greedy makespan formula" `Quick t_greedy_makespan_formula;
          Alcotest.test_case "s=0 rejected" `Quick t_bad_s;
        ] );
      ( "bounds",
        [ Alcotest.test_case "factors and checks" `Quick t_factors ] );
    ]
